//! Tier-1 guarantee of the sweep executor: the parallel matrix produces
//! bit-for-bit the same `SimReport`s as the sequential one.
//!
//! Both runs happen inside a single `#[test]` so the `READDUO_THREADS`
//! environment flips cannot race another test in this binary.
//!
//! `READDUO_CHANNELS` widens the topology (default 1), so the same gate
//! covers the sharded engine: with N channels every matrix cell fans its
//! channels out on the ambient pool, and the merged reports must still be
//! identical across thread counts.

use readduo::core::SchemeKind;
use readduo::memsim::MemoryConfig;
use readduo::trace::Workload;
use readduo_bench::Harness;

#[test]
fn run_matrix_is_identical_across_thread_counts() {
    let channels = readduo_env::usize_at_least("READDUO_CHANNELS", 1).unwrap_or(1);
    let harness = Harness {
        instructions_per_core: 40_000,
        cores: 2,
        seed: 0x00D5_EAD0_2016,
        memory: MemoryConfig::small_test().with_channels(channels),
    };
    let schemes = [
        SchemeKind::Scrubbing,
        SchemeKind::MMetric,
        SchemeKind::Lwt { k: 4 },
    ];
    let workloads = [Workload::toy(), Workload::by_name("gcc").expect("gcc")];

    // Worn runs ride the same env flips: with hard faults and remapping
    // enabled the merged report must still be independent of the pool
    // width (the wear table is per-channel state like everything else).
    let wear = readduo::core::WearConfig::new(0x00FA_0017).with_accel(4_000_000);
    let worn_scheme = SchemeKind::Select { k: 4, s: 2 };
    let worn_workload = Workload::by_name("mcf").expect("mcf");

    // Tiered runs too: the DRAM cache is per-channel state, so the merged
    // tiered report must also be independent of the pool width.
    let dram = readduo::dram::DramConfig::new(harness.seed, 1_024).with_threshold(1);
    let tiered_scheme = SchemeKind::Lwt { k: 4 };
    let tiered_workload = Workload::by_name("gcc").expect("gcc");

    std::env::set_var("READDUO_THREADS", "4");
    let parallel = harness.run_matrix(&schemes, &workloads);
    let streamed_par = harness.run_matrix_streamed(&schemes, &workloads);
    let worn_par = harness
        .run_one_worn(&worn_workload, worn_scheme, 0x00FA_0017, wear)
        .expect("Select is injectable");
    let tiered_par = harness.run_one_tiered(&tiered_workload, tiered_scheme, dram);
    std::env::set_var("READDUO_THREADS", "1");
    let sequential = harness.run_matrix(&schemes, &workloads);
    let streamed_seq = harness.run_matrix_streamed(&schemes, &workloads);
    let worn_seq = harness
        .run_one_worn(&worn_workload, worn_scheme, 0x00FA_0017, wear)
        .expect("Select is injectable");
    let tiered_seq = harness.run_one_tiered(&tiered_workload, tiered_scheme, dram);
    std::env::remove_var("READDUO_THREADS");

    assert_eq!(
        worn_par.report, worn_seq.report,
        "worn run diverged across thread counts"
    );
    assert_eq!(
        tiered_par.report, tiered_seq.report,
        "tiered run diverged across thread counts"
    );
    assert!(
        tiered_par.report.dram_hits > 0,
        "tiered determinism leg must actually hit in DRAM"
    );

    assert_eq!(parallel.len(), schemes.len() * workloads.len());
    assert_eq!(sequential.len(), parallel.len());
    assert_eq!(streamed_par.len(), parallel.len());
    assert_eq!(streamed_seq.len(), parallel.len());
    for (((p, s), sp), ss) in parallel
        .iter()
        .zip(&sequential)
        .zip(&streamed_par)
        .zip(&streamed_seq)
    {
        assert_eq!(p.workload, s.workload, "matrix order must not depend on completion order");
        assert_eq!(p.scheme, s.scheme);
        assert_eq!(
            p.report, s.report,
            "parallel report diverged for {} / {}",
            p.workload, p.scheme
        );
        assert_eq!((&sp.workload, sp.scheme), (&p.workload, p.scheme));
        assert_eq!((&ss.workload, ss.scheme), (&p.workload, p.scheme));
        assert_eq!(
            sp.report, p.report,
            "streamed parallel report diverged for {} / {}",
            p.workload, p.scheme
        );
        assert_eq!(
            ss.report, p.report,
            "streamed sequential report diverged for {} / {}",
            p.workload, p.scheme
        );
    }
    // Workload-major, scheme-minor order — exactly the old nested loop.
    assert_eq!(parallel[0].workload, "toy");
    assert_eq!(parallel[2].workload, "toy");
    assert_eq!(parallel[3].workload, "gcc");
    assert_eq!(parallel[0].scheme, SchemeKind::Scrubbing);
    assert_eq!(parallel[4].scheme, SchemeKind::MMetric);
}
