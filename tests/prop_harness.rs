//! A minimal in-repo property-testing harness (replaces `proptest`).
//!
//! Shape of a property: a *generator* draws a random input from a seeded
//! [`StdRng`], and a *property function* returns `Ok(())` or a description
//! of the violation. [`check`] runs `READDUO_PROP_CASES` cases (default
//! 64), each from its own deterministic per-case seed, so
//!
//! * a failure prints a single `READDUO_PROP_SEED=<seed>` line that
//!   replays exactly that input, on any machine, forever;
//! * before reporting, the harness *shrinks* the failing input — integers
//!   by halving toward zero, collections by halving their length — and
//!   reports the smallest input that still fails.
//!
//! Properties should return `Ok(())` for inputs outside their domain
//! (rather than panicking) so the shrinker cannot escape the domain.
//!
//! This file doubles as its own test target: the `self_tests` module
//! checks the harness's seeding, shrinking, and reporting behaviour.

#![allow(dead_code)] // compiled both standalone and via `mod` from proptests.rs

use readduo_rng::{rngs::StdRng, splitmix64, RngCore, SeedableRng};
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Default number of cases per property, matching the old
/// `ProptestConfig::with_cases(64)`.
pub const DEFAULT_CASES: usize = 64;

/// Cap on property evaluations spent shrinking one failure.
const SHRINK_BUDGET: usize = 2_000;

/// Inputs the harness knows how to simplify after a failure.
pub trait Shrink: Sized {
    /// Candidate simplifications of `self`, roughly ordered most-aggressive
    /// first. An empty vector means fully shrunk.
    fn shrink_candidates(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_shrink_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Shrink for $t {
            fn shrink_candidates(&self) -> Vec<Self> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                // v/2 + 1 keeps a path open for parity-sensitive failures
                // (halving alone can only reach odd values via v - 1).
                let mut out = vec![0, v / 2, v / 2 + 1, v - 1];
                out.sort_unstable();
                out.dedup();
                out.retain(|&c| c != v);
                out
            }
        }
    )*};
}

impl_shrink_uint!(u8, u16, u32, u64, usize);

impl Shrink for f64 {
    fn shrink_candidates(&self) -> Vec<Self> {
        let v = *self;
        if v == 0.0 || !v.is_finite() {
            return Vec::new();
        }
        vec![0.0, v / 2.0]
    }
}

impl Shrink for bool {
    fn shrink_candidates(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl<T: Clone + Shrink> Shrink for Vec<T> {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let n = self.len();
        if n > 0 {
            // Halve the length from either end.
            out.push(self[..n / 2].to_vec());
            out.push(self[n - n / 2..].to_vec());
            // Then shrink individual elements (first candidate each).
            for i in 0..n {
                if let Some(smaller) = self[i].shrink_candidates().into_iter().next() {
                    let mut v = self.clone();
                    v[i] = smaller;
                    out.push(v);
                }
            }
        }
        out
    }
}

impl Shrink for BTreeSet<usize> {
    fn shrink_candidates(&self) -> Vec<Self> {
        if self.is_empty() {
            return Vec::new();
        }
        let as_vec: Vec<usize> = self.iter().copied().collect();
        let n = as_vec.len();
        vec![
            as_vec[..n / 2].iter().copied().collect(),
            as_vec[n - n / 2..].iter().copied().collect(),
        ]
    }
}

macro_rules! impl_shrink_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Clone + Shrink),+> Shrink for ($($name,)+) {
            fn shrink_candidates(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink_candidates() {
                        let mut t = self.clone();
                        t.$idx = cand;
                        out.push(t);
                    }
                )+
                out
            }
        }
    )*};
}

impl_shrink_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

/// Returns the per-property case count (`READDUO_PROP_CASES`, default 64).
pub fn case_count() -> usize {
    std::env::var("READDUO_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_CASES)
}

/// Stable per-case seed: a splitmix64 stream keyed by the property name,
/// advanced to case `i`. Independent of the process, platform, and of any
/// other property's stream.
pub fn case_seed(name: &str, i: usize) -> u64 {
    let mut h = 0x5245_4144_4455_4f21u64; // "READDUO!"
    for b in name.bytes() {
        h = splitmix64(&mut h) ^ u64::from(b);
    }
    let mut s = h ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s)
}

fn run_guarded<T, P: Fn(&T) -> Result<(), String>>(prop: &P, input: &T) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(|| prop(input))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic>".to_string());
            Err(format!("panicked: {msg}"))
        }
    }
}

fn shrink<T, P>(input: T, error: String, prop: &P) -> (T, String)
where
    T: Clone + Shrink,
    P: Fn(&T) -> Result<(), String>,
{
    let mut current = input;
    let mut current_err = error;
    let mut budget = SHRINK_BUDGET;
    'outer: loop {
        for cand in current.shrink_candidates() {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let Err(e) = run_guarded(prop, &cand) {
                current = cand;
                current_err = e;
                continue 'outer;
            }
        }
        break;
    }
    (current, current_err)
}

/// Runs `prop` against `cases` inputs drawn by `gen` from per-case seeds.
///
/// On failure: shrinks the input, then panics with the violation, the
/// shrunken input, and the `READDUO_PROP_SEED=<seed>` incantation that
/// replays the original case. Setting `READDUO_PROP_SEED` runs *only* that
/// case (reproduction mode).
pub fn check_n<T, G, P>(name: &str, cases: usize, gen: G, prop: P)
where
    T: Clone + std::fmt::Debug + Shrink,
    G: Fn(&mut StdRng) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    if let Ok(v) = std::env::var("READDUO_PROP_SEED") {
        let seed: u64 = v
            .parse()
            .unwrap_or_else(|_| panic!("READDUO_PROP_SEED must be a u64, got {v:?}"));
        let input = gen(&mut StdRng::seed_from_u64(seed));
        eprintln!("[{name}] reproducing seed {seed}: {input:?}");
        if let Err(e) = run_guarded(&prop, &input) {
            let (smallest, small_err) = shrink(input.clone(), e.clone(), &prop);
            panic!(
                "property {name} failed under READDUO_PROP_SEED={seed}\n  \
                 input:  {input:?}\n  error:  {e}\n  \
                 shrunk: {smallest:?}\n  shrunk error: {small_err}"
            );
        }
        eprintln!("[{name}] seed {seed} passes");
        return;
    }

    for i in 0..cases {
        let seed = case_seed(name, i);
        let input = gen(&mut StdRng::seed_from_u64(seed));
        if let Err(e) = run_guarded(&prop, &input) {
            let (smallest, small_err) = shrink(input.clone(), e.clone(), &prop);
            panic!(
                "property {name} failed at case {i}/{cases}\n  \
                 input:  {input:?}\n  error:  {e}\n  \
                 shrunk: {smallest:?}\n  shrunk error: {small_err}\n  \
                 reproduce with: READDUO_PROP_SEED={seed} cargo test {name}"
            );
        }
    }
}

/// [`check_n`] at the default case count (≥ 64).
pub fn check<T, G, P>(name: &str, gen: G, prop: P)
where
    T: Clone + std::fmt::Debug + Shrink,
    G: Fn(&mut StdRng) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    check_n(name, case_count(), gen, prop)
}

/// Draws a `Vec<u8>` with a length drawn from `len` (inclusive bounds).
pub fn gen_bytes(rng: &mut StdRng, min_len: usize, max_len: usize) -> Vec<u8> {
    use readduo_rng::Rng as _;
    let len = rng.gen_range(min_len..=max_len);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

/// Draws a set of distinct values from `0..universe` with a size drawn
/// from `min_size..=max_size` (like proptest's `btree_set` strategy).
pub fn gen_subset(
    rng: &mut StdRng,
    universe: usize,
    min_size: usize,
    max_size: usize,
) -> BTreeSet<usize> {
    use readduo_rng::Rng as _;
    assert!(max_size <= universe, "cannot draw {max_size} distinct of {universe}");
    let size = rng.gen_range(min_size..=max_size);
    let mut set = BTreeSet::new();
    while set.len() < size {
        set.insert(rng.gen_range(0..universe));
    }
    set
}

/// `prop_assert!` equivalent: early-returns an `Err` describing the
/// violated condition.
#[allow(unused_macros)] // used via proptests.rs, not by the standalone target
macro_rules! ensure {
    ($cond:expr) => {
        // `if cond {} else` rather than `if !cond` so float comparisons in
        // `cond` don't trip clippy::neg_cmp_op_on_partial_ord at call sites.
        if $cond {
        } else {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return Err(format!($($fmt)+));
        }
    };
}

/// `prop_assert_eq!` equivalent.
#[allow(unused_macros)]
macro_rules! ensure_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "{} != {}\n  left:  {:?}\n  right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            ));
        }
    }};
}

#[allow(unused_imports)]
pub(crate) use {ensure, ensure_eq};

#[cfg(test)]
mod self_tests {
    use super::*;
    use readduo_rng::Rng as _;

    #[test]
    fn passing_property_runs_all_cases() {
        let hits = std::cell::Cell::new(0usize);
        check_n(
            "always_true",
            64,
            |rng| rng.gen_range(0..100u64),
            |_| {
                hits.set(hits.get() + 1);
                Ok(())
            },
        );
        assert_eq!(hits.get(), 64, "all 64 cases must execute");
    }

    #[test]
    fn case_seeds_are_stable_and_distinct() {
        // Pinned: changing the derivation silently unpins every seeded
        // failure report ever printed, so treat it as a format contract.
        assert_eq!(case_seed("p", 0), case_seed("p", 0));
        assert_ne!(case_seed("p", 0), case_seed("p", 1));
        assert_ne!(case_seed("p", 0), case_seed("q", 0));
    }

    #[test]
    fn failure_reports_seed_and_shrinks() {
        let result = std::panic::catch_unwind(|| {
            check_n(
                "fails_above_10",
                64,
                |rng| rng.gen_range(0..1000u64),
                |&v| {
                    if v <= 10 {
                        Ok(())
                    } else {
                        Err(format!("{v} > 10"))
                    }
                },
            )
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains("READDUO_PROP_SEED="), "no repro seed in: {msg}");
        // Shrink-by-halving must land on the boundary: the smallest
        // still-failing value of `v > 10` is 11.
        assert!(msg.contains("shrunk: 11"), "bad shrink in: {msg}");
    }

    #[test]
    fn shrink_handles_panicking_properties() {
        let result = std::panic::catch_unwind(|| {
            check_n(
                "panics_on_odd",
                64,
                |rng| rng.gen_range(0..999u64),
                |&v| {
                    assert!(v % 2 == 0, "odd input {v}");
                    Ok(())
                },
            )
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains("panicked"), "panic not captured: {msg}");
        assert!(msg.contains("shrunk: 1\n"), "smallest odd is 1: {msg}");
    }

    #[test]
    fn vec_shrink_halves_length() {
        let v: Vec<u8> = (0..8).collect();
        let cands = v.shrink_candidates();
        assert!(cands.contains(&vec![0, 1, 2, 3]));
        assert!(cands.contains(&vec![4, 5, 6, 7]));
    }

    #[test]
    fn subset_generator_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let s = gen_subset(&mut rng, 592, 0, 8);
            assert!(s.len() <= 8);
            assert!(s.iter().all(|&x| x < 592));
        }
    }

    #[test]
    fn bytes_generator_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let v = gen_bytes(&mut rng, 0, 128);
            assert!(v.len() <= 128);
        }
    }
}
