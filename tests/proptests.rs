//! Property-based tests over the core data structures and invariants,
//! running on the in-repo harness (`prop_harness`, replacing `proptest`).
//!
//! Every property runs ≥ 64 seeded cases; a failure prints a
//! `READDUO_PROP_SEED=<seed>` line that replays exactly the failing input
//! (see README § Reproducing a property-test failure). Properties return
//! `Ok(())` for inputs outside their domain so the shrinker stays inside.

mod prop_harness;

use std::sync::OnceLock;

use prop_harness::{check, ensure, ensure_eq, gen_bytes, gen_subset};
use readduo::core::LwtFlags;
use readduo::ecc::{Bch, BchBitslice, BitVec, DecodeOutcome, GfField, BITSLICE_LANES};
use readduo::math::{binomial, erf, erf_slice, erfc, erfc_slice, ln_choose, LogProb};
use readduo::memsim::{ChannelMerge, Topology};
use readduo::pcm::state::{bytes_to_cell_data, cell_data_to_bytes};
use readduo::pcm::{
    drift_exponent, log_metric_at, log_metric_at_slice, log_metric_at_u, MetricConfig,
};
use readduo::reliability::{CachedErrorCurve, CellErrorModel};
use readduo::trace::{read_trace, write_trace, TraceGenerator, Workload};
use readduo_rng::Rng as _;

/// GF(2^10): field axioms on arbitrary nonzero elements.
#[test]
fn gf_axioms() {
    check(
        "gf_axioms",
        |rng| {
            (
                rng.gen_range(1u32..1024),
                rng.gen_range(1u32..1024),
                rng.gen_range(1u32..1024),
            )
        },
        |&(a, b, c)| {
            if [a, b, c].iter().any(|v| !(1..1024).contains(v)) {
                return Ok(());
            }
            let f = GfField::new(10);
            ensure_eq!(f.mul(a, b), f.mul(b, a));
            ensure_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
            ensure_eq!(f.mul(a, b ^ c), f.mul(a, b) ^ f.mul(a, c));
            ensure_eq!(f.mul(a, f.inv(a)), 1);
            ensure_eq!(f.div(f.mul(a, b), b), a);
            Ok(())
        },
    );
}

/// BCH-8 corrects any ≤8-bit error pattern and restores the data.
#[test]
fn bch_corrects_all_patterns_up_to_t() {
    check(
        "bch_corrects_all_patterns_up_to_t",
        |rng| (gen_bytes(rng, 64, 64), gen_subset(rng, 592, 0, 8)),
        |(data, positions)| {
            if data.len() != 64 || positions.len() > 8 {
                return Ok(());
            }
            let code = Bch::new(10, 8, 512);
            let clean = code.encode(data);
            let mut cw = clean.clone();
            for &p in positions {
                cw.flip(p);
            }
            let out = code.decode(&mut cw);
            if positions.is_empty() {
                ensure_eq!(out, DecodeOutcome::Clean);
            } else {
                ensure_eq!(out, DecodeOutcome::Corrected(positions.len()));
            }
            ensure_eq!(code.extract_data(&clean), *data);
            ensure_eq!(cw, clean);
            Ok(())
        },
    );
}

/// Patterns of 9..=16 errors are detected, never silently corrupted.
#[test]
fn bch_detects_beyond_t() {
    check(
        "bch_detects_beyond_t",
        |rng| (gen_bytes(rng, 64, 64), gen_subset(rng, 592, 9, 16)),
        |(data, positions)| {
            if data.len() != 64 || !(9..=16).contains(&positions.len()) {
                return Ok(());
            }
            let code = Bch::new(10, 8, 512);
            let mut cw = code.encode(data);
            for &p in positions {
                cw.flip(p);
            }
            let before = cw.clone();
            ensure_eq!(code.decode(&mut cw), DecodeOutcome::Detected);
            ensure_eq!(cw, before);
            Ok(())
        },
    );
}

/// Binomial tail is monotone and bounded by the union bound.
#[test]
fn binomial_tail_bounds() {
    check(
        "binomial_tail_bounds",
        |rng| {
            (
                rng.gen_range(1u64..600),
                rng.gen_range(0.0f64..0.01),
                rng.gen_range(1u64..20),
            )
        },
        |&(n, p, k)| {
            if !(1..600).contains(&n) || !(0.0..0.01).contains(&p) || !(1..20).contains(&k) {
                return Ok(());
            }
            let tail = binomial::tail_ge(n, p, k);
            ensure!((0.0..=1.0).contains(&tail), "tail {tail} outside [0,1]");
            // Union bound: P(X >= k) <= C(n,k) p^k.
            if p > 0.0 && k <= n {
                let ub = (ln_choose(n, k) + k as f64 * p.ln()).exp();
                ensure!(
                    tail <= ub * (1.0 + 1e-9) + 1e-300,
                    "tail {tail} above union bound {ub}"
                );
            }
            // Monotonicity in k.
            ensure!(
                binomial::tail_ge(n, p, k + 1) <= tail + 1e-15,
                "tail not monotone in k at n={n} p={p} k={k}"
            );
            Ok(())
        },
    );
}

/// LogProb complement round-trips within tolerance in the mid-range.
#[test]
fn logprob_complement() {
    check(
        "logprob_complement",
        |rng| rng.gen_range(1e-6f64..0.999_999),
        |&p| {
            if !(1e-6..0.999_999).contains(&p) {
                return Ok(());
            }
            let lp = LogProb::from_prob(p);
            let back = lp.complement().complement().to_prob();
            ensure!((back - p).abs() < 1e-9, "round-trip {p} -> {back}");
            Ok(())
        },
    );
}

/// Byte ↔ cell-data conversion round-trips for any payload.
#[test]
fn cell_packing_round_trips() {
    check(
        "cell_packing_round_trips",
        |rng| gen_bytes(rng, 0, 127),
        |data| {
            let cells = bytes_to_cell_data(data);
            ensure_eq!(cells.len(), data.len() * 4);
            ensure_eq!(cell_data_to_bytes(&cells), *data);
            Ok(())
        },
    );
}

/// BitVec ones() agrees with per-bit reads.
#[test]
fn bitvec_ones_consistent() {
    check(
        "bitvec_ones_consistent",
        |rng| gen_subset(rng, 500, 0, 39),
        |bits| {
            let mut v = BitVec::zeros(500);
            for &b in bits {
                v.set(b, true);
            }
            ensure_eq!(v.ones(), bits.iter().copied().collect::<Vec<_>>());
            ensure_eq!(v.count_ones(), bits.len());
            Ok(())
        },
    );
}

/// The LWT-flag safety property, shared by the random-case property and the
/// pinned regression case below: replay any op sequence against ground
/// truth — R allowed ⇒ the last write is within one scrub interval.
fn lwt_flags_safety_prop(ops: &[(u8, f64)]) -> Result<(), String> {
    if ops.is_empty() || ops.iter().any(|&(op, dt)| op >= 3 || !(0.0..0.5).contains(&dt)) {
        return Ok(());
    }
    for k in [2u8, 4, 8] {
        let mut f = LwtFlags::new(k);
        let s_len = 1.0;
        let mut now = 0.0f64;
        let mut last_write = f64::NEG_INFINITY;
        let mut last_scrub = 0.0f64;
        for &(op, dt) in ops {
            now += dt;
            while now - last_scrub >= k as f64 * s_len {
                last_scrub += k as f64 * s_len;
                f.on_scrub(false);
            }
            let sub = (((now - last_scrub) / s_len) as u8).min(k - 1);
            if op == 0 {
                f.on_write(sub);
                last_write = now;
            } else if f.read_allows_r(sub) && now - last_write > k as f64 * s_len + 1e-9 {
                return Err(format!("k={} R allowed at age {}", k, now - last_write));
            }
        }
    }
    Ok(())
}

/// LWT flag safety over random op sequences.
#[test]
fn lwt_flags_safety() {
    check(
        "lwt_flags_safety",
        |rng| {
            let len = rng.gen_range(1usize..=79);
            (0..len)
                .map(|_| (rng.gen_range(0u8..3), rng.gen_range(0.0f64..0.5)))
                .collect::<Vec<_>>()
        },
        |ops| lwt_flags_safety_prop(ops),
    );
}

/// Regression case cc b2cf3c1f (from the retired
/// `tests/proptests.proptest-regressions`): a long burst of writes whose
/// timestamps straddle a scrub boundary, followed by reads — the pattern
/// that once let a stale flag survive the scrub.
#[test]
fn lwt_flags_safety_regression_b2cf3c1f() {
    let ops: Vec<(u8, f64)> = vec![
        (0, 0.3947538264379814),
        (0, 0.48751012065678373),
        (0, 0.40981034828869795),
        (0, 0.2995417221605503),
        (0, 0.09134815778152308),
        (0, 0.4363682083537715),
        (0, 0.4263829786348656),
        (0, 0.4640976361829309),
        (0, 0.34880520364353806),
        (0, 0.32581659319327305),
        (0, 0.4641018554403862),
        (0, 0.22965626196361133),
        (0, 0.40796001606509386),
        (0, 0.3129958785727388),
        (0, 0.2092185219202652),
        (0, 0.44924386823809564),
        (0, 0.3932798375585406),
        (0, 0.18131113594256373),
        (0, 0.4594243050057818),
        (0, 0.3251214899930796),
        (0, 0.11036746582274844),
        (0, 0.48481295582556194),
        (0, 0.026561644968392636),
        (0, 0.1768765003065098),
        (0, 0.06888761789490826),
        (0, 0.14623522039291043),
        (0, 0.4385122682931762),
        (0, 0.45022997436871925),
        (1, 0.48573678310745905),
        (1, 0.47908870280615845),
        (1, 0.31707519272722506),
        (1, 0.3063272057319298),
        (1, 0.39786727545192424),
        (1, 0.48485397355227466),
        (1, 0.4646740937180242),
        (1, 0.22554511247324466),
        (1, 0.1550355201107649),
        (1, 0.23048674579448336),
        (1, 0.12296229657323753),
        (1, 0.187538551880757),
        (1, 0.178585849031391),
    ];
    lwt_flags_safety_prop(&ops).expect("pinned regression case must pass");
}

/// Streaming generation is chunk-size invariant: any refill granularity
/// collects to exactly the trace `generate()` materialises.
#[test]
fn trace_stream_chunk_invariant() {
    check(
        "trace_stream_chunk_invariant",
        |rng| {
            (
                rng.gen::<u64>(),
                rng.gen_range(1_000u64..10_000),
                rng.gen_range(1usize..=512),
            )
        },
        |&(seed, instr, chunk)| {
            if !(1_000..10_000).contains(&instr) || !(1..=512).contains(&chunk) {
                return Ok(());
            }
            let gen = TraceGenerator::new(seed);
            let w = Workload::toy();
            let materialised = gen.generate(&w, instr, 2);
            let collected = gen.stream(&w, instr, 2).with_chunk(chunk).collect_trace();
            ensure_eq!(collected, materialised);
            Ok(())
        },
    );
}

/// The address interleave of an arbitrary topology is bijective — every
/// line decomposes to a valid `(channel, rank, bank, local)` placement,
/// recomposes to itself, and no two lines share a placement — and balanced:
/// enumerating any prefix `[0, L)` of the line space (uniform addresses)
/// loads every `(channel, bank)` pair within one line of every other.
#[test]
fn topology_interleave_bijective_and_balanced() {
    check(
        "topology_interleave_bijective_and_balanced",
        |rng| {
            (
                rng.gen_range(1usize..=8),
                rng.gen_range(1usize..=4),
                rng.gen_range(1usize..=8),
                rng.gen_range(1u64..=4000),
            )
        },
        |&(channels, ranks, banks_per_rank, lines)| {
            if channels == 0 || ranks == 0 || banks_per_rank == 0 || lines == 0 {
                return Ok(());
            }
            let t = Topology { channels, ranks, banks_per_rank };
            let mut counts = vec![0u64; t.total_banks()];
            let mut seen = std::collections::HashSet::new();
            for line in 0..lines {
                let a = t.decompose(line);
                ensure!(a.channel < channels, "channel {} out of range", a.channel);
                ensure!(a.rank < ranks, "rank {} out of range", a.rank);
                ensure!(a.bank < banks_per_rank, "bank {} out of range", a.bank);
                ensure_eq!(a.bank_in_channel, a.rank * banks_per_rank + a.bank);
                ensure_eq!(t.channel_of(line), a.channel);
                ensure_eq!(t.recompose(a.channel, a.bank_in_channel, a.local_line), line);
                ensure!(
                    seen.insert((a.channel, a.bank_in_channel, a.local_line)),
                    "two lines share placement {a:?}"
                );
                counts[a.channel * t.banks_per_channel() + a.bank_in_channel] += 1;
            }
            // Exactly balanced: the stripe cycles through all banks, so any
            // prefix loads banks within one line of each other (far inside
            // the 1% requirement for uniform address streams).
            let max = counts.iter().copied().max().unwrap_or(0);
            let min = counts.iter().copied().min().unwrap_or(0);
            ensure!(
                max - min <= 1,
                "bank load imbalance {max}-{min} over {lines} uniform lines"
            );
            Ok(())
        },
    );
}

/// `ChannelMerge` pops random event soups in exact `(at, channel, seq)`
/// order — verified against a `BinaryHeap` ordered by that key.
#[test]
fn channel_merge_matches_binary_heap_reference() {
    use std::cmp::Reverse;
    check(
        "channel_merge_matches_binary_heap_reference",
        |rng| {
            let channels = rng.gen_range(1usize..=5);
            let events: Vec<(usize, u64)> = (0..rng.gen_range(0usize..=200))
                .map(|_| (rng.gen_range(0..channels), rng.gen_range(0u64..50_000)))
                .collect();
            (channels, events)
        },
        |(channels, events)| {
            let channels = *channels;
            if channels == 0 || events.iter().any(|&(ch, _)| ch >= channels) {
                return Ok(());
            }
            let mut merge = ChannelMerge::new(channels);
            let mut heap = std::collections::BinaryHeap::new();
            let mut seq = vec![0u64; channels];
            for (i, &(ch, at)) in events.iter().enumerate() {
                merge.push(ch, at, i);
                heap.push(Reverse((at, ch, seq[ch], i)));
                seq[ch] += 1;
            }
            ensure_eq!(merge.pending(), events.len());
            let mut popped = Vec::new();
            while let Some((at, ch, kind)) = merge.pop() {
                popped.push((at, ch, kind));
            }
            let mut expected = Vec::new();
            while let Some(Reverse((at, ch, _seq, kind))) = heap.pop() {
                expected.push((at, ch, kind));
            }
            ensure_eq!(popped, expected);
            ensure_eq!(merge.pending(), 0);
            Ok(())
        },
    );
}

/// The paper code and its bitsliced decoder, built once: construction
/// tabulates GF logs and 592×16 syndrome contributions, which would
/// dominate the property if rebuilt per case.
fn bch_pair() -> &'static (Bch, BchBitslice) {
    static PAIR: OnceLock<(Bch, BchBitslice)> = OnceLock::new();
    PAIR.get_or_init(|| {
        let code = Bch::new(10, 8, 512);
        let sliced = BchBitslice::new(&code);
        (code, sliced)
    })
}

/// Every lane of the bitsliced BCH decoder returns exactly the scalar
/// oracle's verdict. Each case fills all 64 lanes with a spread of error
/// weights — empty (`Clean`), 1..=t (`Corrected`), t+1..=2t (`Detected`),
/// far beyond 2t (where `Miscorrected` verdicts live), and one lane set to
/// a nonzero *codeword* (zero syndromes, guaranteed `Miscorrected`).
#[test]
fn bch_bitslice_matches_scalar_oracle() {
    check(
        "bch_bitslice_matches_scalar_oracle",
        |rng| {
            let (code, _) = bch_pair();
            let nbits = code.codeword_bits();
            (0..BITSLICE_LANES)
                .map(|lane| match lane % 8 {
                    0 => Vec::new(),
                    1 => {
                        // A nonzero codeword as the "error" pattern: its
                        // syndromes vanish, so decode must report silent
                        // corruption, and the bitsliced screen takes its
                        // all-clean shortcut for a nonempty pattern.
                        let mut data = gen_bytes(rng, 64, 64);
                        data.resize(64, 0);
                        data[0] |= 1;
                        code.encode(&data)
                            .ones()
                            .into_iter()
                            .map(|p| p as u16)
                            .collect()
                    }
                    2 => to_u16(gen_subset(rng, nbits, 1, 8)),
                    3 => to_u16(gen_subset(rng, nbits, 9, 16)),
                    4 => to_u16(gen_subset(rng, nbits, 17, 24)),
                    5 => to_u16(gen_subset(rng, nbits, 25, 60)),
                    6 => to_u16(gen_subset(rng, nbits, 0, 2)),
                    _ => to_u16(gen_subset(rng, nbits, 0, 40)),
                })
                .collect::<Vec<Vec<u16>>>()
        },
        |pats| {
            let (code, sliced) = bch_pair();
            let nbits = code.codeword_bits();
            if pats.len() > BITSLICE_LANES
                || pats.iter().any(|p| {
                    p.iter().any(|&b| b as usize >= nbits)
                        || p.windows(2).any(|w| w[0] >= w[1])
                })
            {
                return Ok(());
            }
            let refs: Vec<&[u16]> = pats.iter().map(Vec::as_slice).collect();
            let batch = sliced.decode_patterns(&refs);
            ensure_eq!(batch.len(), pats.len());
            for (lane, pat) in pats.iter().enumerate() {
                let oracle = code.decode_error_pattern(pat);
                ensure!(
                    batch[lane] == oracle,
                    "lane {lane} weight {}: bitsliced {:?} != scalar {oracle:?}",
                    pat.len(),
                    batch[lane]
                );
            }
            Ok(())
        },
    );
}

fn to_u16(positions: impl IntoIterator<Item = usize>) -> Vec<u16> {
    positions.into_iter().map(|p| p as u16).collect()
}

/// Every lane of the bitsliced *erasure-aware* decoder returns exactly
/// the scalar oracle's verdict. Each case fills all 64 lanes with the
/// stuck-bit shapes the wear subsystem produces plus adversarial ones —
/// wrong ⊆ erased with `f ≤ t` (the guaranteed-correct hint), erased
/// positions that read right (hints that cost a trial but flip nothing
/// wrong), drift errors outside the erasure set near the `e + f ≤ 2t`
/// boundary, erasure sets far beyond capacity, and the degenerate empty
/// hint that must collapse to the plain decode.
#[test]
fn bch_erasure_decode_matches_scalar_oracle_bitsliced() {
    check(
        "bch_erasure_decode_matches_scalar_oracle_bitsliced",
        |rng| {
            let (code, _) = bch_pair();
            let nbits = code.codeword_bits();
            (0..BITSLICE_LANES)
                .map(|lane| match lane % 8 {
                    0 => (Vec::new(), Vec::new()),
                    1 => {
                        // The steady-state wear shape: every wrong bit is
                        // a known-dead cell, f <= t.
                        let erased = gen_subset(rng, nbits, 1, 8);
                        let wrong: Vec<u16> = erased
                            .iter()
                            .filter(|_| rng.gen_range(0u32..2) == 0)
                            .map(|&p| p as u16)
                            .collect();
                        (wrong, to_u16(erased))
                    }
                    2 => {
                        // Empty hint: must be the plain decode verdict.
                        (to_u16(gen_subset(rng, nbits, 0, 12)), Vec::new())
                    }
                    3 => {
                        // Stuck bits plus drift outside the hint, mixed
                        // weights straddling the e + f <= 2t boundary.
                        let erased = gen_subset(rng, nbits, 1, 8);
                        let mut wrong: Vec<u16> = erased
                            .iter()
                            .filter(|_| rng.gen_range(0u32..2) == 0)
                            .map(|&p| p as u16)
                            .collect();
                        wrong.extend(
                            gen_subset(rng, nbits, 0, 8)
                                .into_iter()
                                .filter(|p| !erased.contains(p))
                                .map(|p| p as u16),
                        );
                        wrong.sort_unstable();
                        (wrong, to_u16(erased))
                    }
                    4 => {
                        // Hints alone, none of them actually wrong: the
                        // erasure trial flips healthy bits and must still
                        // agree with the oracle.
                        (Vec::new(), to_u16(gen_subset(rng, nbits, 1, 16)))
                    }
                    5 => {
                        // Far beyond capacity: 2x the margin and more.
                        let erased = gen_subset(rng, nbits, 17, 40);
                        let wrong: Vec<u16> = erased
                            .iter()
                            .filter(|_| rng.gen_range(0u32..2) == 0)
                            .map(|&p| p as u16)
                            .collect();
                        (wrong, to_u16(erased))
                    }
                    6 => {
                        // Adversarial: heavy unrelated errors with a hint
                        // that points mostly at the wrong cells.
                        (
                            to_u16(gen_subset(rng, nbits, 0, 60)),
                            to_u16(gen_subset(rng, nbits, 1, 16)),
                        )
                    }
                    _ => (
                        to_u16(gen_subset(rng, nbits, 0, 24)),
                        to_u16(gen_subset(rng, nbits, 0, 16)),
                    ),
                })
                .collect::<Vec<(Vec<u16>, Vec<u16>)>>()
        },
        |lanes| {
            let (code, sliced) = bch_pair();
            let nbits = code.codeword_bits();
            let in_domain = |p: &[u16]| {
                p.iter().all(|&b| (b as usize) < nbits) && p.windows(2).all(|w| w[0] < w[1])
            };
            if lanes.len() > BITSLICE_LANES
                || lanes.iter().any(|(e, f)| !in_domain(e) || !in_domain(f))
            {
                return Ok(());
            }
            let errs: Vec<&[u16]> = lanes.iter().map(|(e, _)| e.as_slice()).collect();
            let eras: Vec<&[u16]> = lanes.iter().map(|(_, f)| f.as_slice()).collect();
            let batch = sliced.decode_patterns_with_erasures(&errs, &eras);
            ensure_eq!(batch.len(), lanes.len());
            for (lane, (errors, erasures)) in lanes.iter().enumerate() {
                let oracle = code.decode_error_pattern_with_erasures(errors, erasures);
                ensure!(
                    batch[lane] == oracle,
                    "lane {lane} e={} f={}: bitsliced {:?} != scalar {oracle:?}",
                    errors.len(),
                    erasures.len(),
                    batch[lane]
                );
            }
            Ok(())
        },
    );
}

/// The batched Cody kernels are the scalar functions, bit for bit, at
/// every slot — over magnitudes from deep underflow to both saturated
/// tails, either sign, and zero.
#[test]
fn batched_erf_kernels_match_scalar_bitwise() {
    check(
        "batched_erf_kernels_match_scalar_bitwise",
        |rng| {
            (0..rng.gen_range(0usize..=257))
                .map(|_| {
                    let x = match rng.gen_range(0u32..8) {
                        0 => 0.0,
                        1 => 10f64.powf(rng.gen_range(-300.0f64..-8.0)),
                        2 => rng.gen_range(6.0f64..30.0),
                        _ => rng.gen_range(0.0f64..4.0),
                    };
                    if rng.gen_range(0u32..2) == 0 {
                        x
                    } else {
                        -x
                    }
                })
                .collect::<Vec<f64>>()
        },
        |xs| {
            if xs.iter().any(|x| !x.is_finite()) {
                return Ok(());
            }
            let mut out = vec![0.0; xs.len()];
            erf_slice(xs, &mut out);
            for (&x, &o) in xs.iter().zip(&out) {
                ensure!(
                    o.to_bits() == erf(x).to_bits(),
                    "erf({x:e}): batch {o:e} != scalar {:e}",
                    erf(x)
                );
            }
            erfc_slice(xs, &mut out);
            for (&x, &o) in xs.iter().zip(&out) {
                ensure!(
                    o.to_bits() == erfc(x).to_bits(),
                    "erfc({x:e}): batch {o:e} != scalar {:e}",
                    erfc(x)
                );
            }
            Ok(())
        },
    );
}

/// Hoisting the drift exponent is exact: for any line of cells,
/// `log_metric_at_slice` / `log_metric_at_u` over one shared
/// `drift_exponent(t, t0)` reproduce per-cell `log_metric_at` bit for bit.
#[test]
fn batched_drift_kernel_matches_scalar_bitwise() {
    check(
        "batched_drift_kernel_matches_scalar_bitwise",
        |rng| {
            let t0 = 10f64.powf(rng.gen_range(-9.0f64..0.0));
            // Both sides of the t <= t0 clamp, across ns..centuries.
            let t = 10f64.powf(rng.gen_range(-12.0f64..10.0));
            let cells: Vec<(f64, f64)> = (0..rng.gen_range(0usize..=296))
                .map(|_| (rng.gen_range(0.0f64..8.0), rng.gen_range(0.0f64..0.25)))
                .collect();
            (t, t0, cells)
        },
        |input| {
            let (t, t0, cells) = input;
            if !(*t0 > 0.0 && t.is_finite()) {
                return Ok(());
            }
            let u = drift_exponent(*t, *t0);
            let (x0s, alphas): (Vec<f64>, Vec<f64>) = cells.iter().copied().unzip();
            let mut out = vec![0.0; cells.len()];
            log_metric_at_slice(&x0s, &alphas, u, &mut out);
            for (i, &(x0, a)) in cells.iter().enumerate() {
                let scalar = log_metric_at(x0, a, *t, *t0);
                ensure!(
                    out[i].to_bits() == scalar.to_bits(),
                    "slot {i}: slice kernel {:e} != log_metric_at {scalar:e}",
                    out[i]
                );
                ensure!(
                    log_metric_at_u(x0, a, u).to_bits() == scalar.to_bits(),
                    "slot {i}: log_metric_at_u {:e} != log_metric_at {scalar:e}",
                    log_metric_at_u(x0, a, u)
                );
            }
            Ok(())
        },
    );
}

/// The R-metric error curve, tabulated once: each knot integrates a
/// 96-point quadrature, far too slow to rebuild per case.
fn cached_curve() -> &'static CachedErrorCurve {
    static CURVE: OnceLock<CachedErrorCurve> = OnceLock::new();
    CURVE.get_or_init(|| {
        let model = CellErrorModel::new(MetricConfig::r_metric());
        CachedErrorCurve::new(&model, 1.0, 1e9, 48)
    })
}

/// `CachedErrorCurve::prob_slice` is `prob` bit for bit at every slot —
/// including non-positive ages (exact zero), below-grid, in-range, and
/// beyond-grid saturation.
#[test]
fn cached_curve_batched_lookup_matches_scalar_bitwise() {
    check(
        "cached_curve_batched_lookup_matches_scalar_bitwise",
        |rng| {
            (0..rng.gen_range(0usize..=300))
                .map(|_| match rng.gen_range(0u32..8) {
                    0 => 0.0,
                    1 => -rng.gen_range(0.0f64..1e6),
                    _ => 10f64.powf(rng.gen_range(-3.0f64..12.0)),
                })
                .collect::<Vec<f64>>()
        },
        |ages| {
            if ages.iter().any(|t| !t.is_finite()) {
                return Ok(());
            }
            let curve = cached_curve();
            let mut out = vec![0.0; ages.len()];
            curve.prob_slice(ages, &mut out);
            for (&t, &p) in ages.iter().zip(&out) {
                ensure!(
                    p.to_bits() == curve.prob(t).to_bits(),
                    "prob({t:e}): batch {p:e} != scalar {:e}",
                    curve.prob(t)
                );
            }
            Ok(())
        },
    );
}

/// Trace serialisation round-trips for arbitrary generated traces.
#[test]
fn trace_format_round_trips() {
    check(
        "trace_format_round_trips",
        |rng| (rng.gen::<u64>(), rng.gen_range(1_000u64..20_000)),
        |&(seed, instr)| {
            if !(1_000..20_000).contains(&instr) {
                return Ok(());
            }
            let t = TraceGenerator::new(seed).generate(&Workload::toy(), instr, 2);
            let mut buf = Vec::new();
            write_trace(&t, &mut buf).map_err(|e| format!("write failed: {e}"))?;
            let back = read_trace(&buf[..]).map_err(|e| format!("read failed: {e}"))?;
            ensure_eq!(back, t);
            Ok(())
        },
    );
}
