//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use readduo::core::LwtFlags;
use readduo::ecc::{Bch, BitVec, DecodeOutcome, GfField};
use readduo::math::{binomial, ln_choose, LogProb};
use readduo::pcm::state::{bytes_to_cell_data, cell_data_to_bytes};
use readduo::trace::{read_trace, write_trace, TraceGenerator, Workload};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GF(2^10): field axioms on arbitrary nonzero elements.
    #[test]
    fn gf_axioms(a in 1u32..1024, b in 1u32..1024, c in 1u32..1024) {
        let f = GfField::new(10);
        prop_assert_eq!(f.mul(a, b), f.mul(b, a));
        prop_assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
        prop_assert_eq!(f.mul(a, b ^ c), f.mul(a, b) ^ f.mul(a, c));
        prop_assert_eq!(f.mul(a, f.inv(a)), 1);
        prop_assert_eq!(f.div(f.mul(a, b), b), a);
    }

    /// BCH-8 corrects any ≤8-bit error pattern and restores the data.
    #[test]
    fn bch_corrects_all_patterns_up_to_t(
        data in proptest::collection::vec(any::<u8>(), 64),
        positions in proptest::collection::btree_set(0usize..592, 0..=8),
    ) {
        let code = Bch::new(10, 8, 512);
        let clean = code.encode(&data);
        let mut cw = clean.clone();
        for &p in &positions {
            cw.flip(p);
        }
        let out = code.decode(&mut cw);
        if positions.is_empty() {
            prop_assert_eq!(out, DecodeOutcome::Clean);
        } else {
            prop_assert_eq!(out, DecodeOutcome::Corrected(positions.len()));
        }
        prop_assert_eq!(code.extract_data(&clean), data);
        prop_assert_eq!(cw, clean);
    }

    /// Patterns of 9..=16 errors are detected, never silently corrupted.
    #[test]
    fn bch_detects_beyond_t(
        data in proptest::collection::vec(any::<u8>(), 64),
        positions in proptest::collection::btree_set(0usize..592, 9..=16),
    ) {
        let code = Bch::new(10, 8, 512);
        let mut cw = code.encode(&data);
        for &p in &positions {
            cw.flip(p);
        }
        let before = cw.clone();
        prop_assert_eq!(code.decode(&mut cw), DecodeOutcome::Detected);
        prop_assert_eq!(cw, before);
    }

    /// Binomial tail is monotone and bounded by the union bound.
    #[test]
    fn binomial_tail_bounds(n in 1u64..600, p in 0.0f64..0.01, k in 1u64..20) {
        let tail = binomial::tail_ge(n, p, k);
        prop_assert!((0.0..=1.0).contains(&tail));
        // Union bound: P(X >= k) <= C(n,k) p^k.
        if p > 0.0 && k <= n {
            let ub = (ln_choose(n, k) + k as f64 * p.ln()).exp();
            prop_assert!(tail <= ub * (1.0 + 1e-9) + 1e-300);
        }
        // Monotonicity in k.
        prop_assert!(binomial::tail_ge(n, p, k + 1) <= tail + 1e-15);
    }

    /// LogProb complement round-trips within tolerance in the mid-range.
    #[test]
    fn logprob_complement(p in 1e-6f64..0.999_999) {
        let lp = LogProb::from_prob(p);
        let back = lp.complement().complement().to_prob();
        prop_assert!((back - p).abs() < 1e-9);
    }

    /// Byte ↔ cell-data conversion round-trips for any payload.
    #[test]
    fn cell_packing_round_trips(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let cells = bytes_to_cell_data(&data);
        prop_assert_eq!(cells.len(), data.len() * 4);
        prop_assert_eq!(cell_data_to_bytes(&cells), data);
    }

    /// BitVec ones() agrees with per-bit reads.
    #[test]
    fn bitvec_ones_consistent(bits in proptest::collection::btree_set(0usize..500, 0..40)) {
        let mut v = BitVec::zeros(500);
        for &b in &bits {
            v.set(b, true);
        }
        prop_assert_eq!(v.ones(), bits.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(v.count_ones(), bits.len());
    }

    /// LWT flag safety: replay any op sequence against ground truth — R
    /// allowed ⇒ the last write is within one scrub interval.
    #[test]
    fn lwt_flags_safety(ops in proptest::collection::vec((0u8..3, 0.0f64..0.5), 1..80)) {
        for k in [2u8, 4, 8] {
            let mut f = LwtFlags::new(k);
            let s_len = 1.0;
            let mut now = 0.0f64;
            let mut last_write = f64::NEG_INFINITY;
            let mut last_scrub = 0.0f64;
            for &(op, dt) in &ops {
                now += dt;
                while now - last_scrub >= k as f64 * s_len {
                    last_scrub += k as f64 * s_len;
                    f.on_scrub(false);
                }
                let sub = (((now - last_scrub) / s_len) as u8).min(k - 1);
                if op == 0 {
                    f.on_write(sub);
                    last_write = now;
                } else if f.read_allows_r(sub) {
                    prop_assert!(
                        now - last_write <= k as f64 * s_len + 1e-9,
                        "k={} R allowed at age {}", k, now - last_write
                    );
                }
            }
        }
    }

    /// Trace serialisation round-trips for arbitrary generated traces.
    #[test]
    fn trace_format_round_trips(seed in any::<u64>(), instr in 1_000u64..20_000) {
        let t = TraceGenerator::new(seed).generate(&Workload::toy(), instr, 2);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        prop_assert_eq!(read_trace(&buf[..]).unwrap(), t);
    }
}
