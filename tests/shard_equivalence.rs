//! Differential-testing harness for the sharded multi-channel engine.
//!
//! The tentpole claim of the topology work is that sharding is *pure
//! parallelism*: a `channels × ranks × banks` machine run channel-by-
//! channel on a worker pool produces bit-for-bit the report of the
//! sequential single-wheel reference, which steps the same per-channel
//! engines one event at a time in exact `(at, channel, seq)` order. This
//! suite pins that equivalence across every scheme, several workloads,
//! channel counts {1, 2, 8} and pool widths {1, 4, ambient}, and covers
//! the topology's edge cases: a 1-channel topology reproducing the
//! pre-topology engine, congestion isolation between channels, and
//! per-channel scrub-pointer wrap-around.

use readduo::core::{channel_seed, SchemeKind};
use readduo::memsim::{FixedLatencyDevice, MemoryConfig, SimReport, Simulator, Topology};
use readduo::trace::{MemOp, OpKind, OpSource, Trace, TraceCursor, TraceGenerator, Workload};
use readduo_pool::Pool;

const SEED: u64 = 0x00D5_EAD0_2016;

fn all_schemes() -> Vec<SchemeKind> {
    vec![
        SchemeKind::Ideal,
        SchemeKind::Scrubbing,
        SchemeKind::ScrubbingW0,
        SchemeKind::MMetric,
        SchemeKind::Hybrid,
        SchemeKind::Lwt { k: 4 },
        SchemeKind::LwtNoConversion { k: 2 },
        SchemeKind::Select { k: 4, s: 2 },
        SchemeKind::Tlc,
    ]
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload::toy(),
        Workload::by_name("gcc").expect("gcc in the SPEC2006 set"),
        Workload::by_name("mcf").expect("mcf in the SPEC2006 set"),
    ]
}

fn trace_for(w: &Workload) -> Trace {
    TraceGenerator::new(SEED).generate(w, 8_000, 2)
}

/// Pool widths to exercise: pinned 1 and 4 plus whatever the ambient
/// `READDUO_THREADS` resolves to, deduplicated.
fn pool_widths() -> Vec<usize> {
    let mut widths = vec![1usize, 4];
    let ambient = Pool::from_env().workers();
    if !widths.contains(&ambient) {
        widths.push(ambient);
    }
    widths
}

/// The headline differential test: for every scheme × workload × channel
/// count, `run_sharded` at every pool width equals the sequential
/// single-wheel reference bit-for-bit.
#[test]
fn sharded_engine_matches_sequential_reference() {
    let widths = pool_widths();
    for w in &workloads() {
        let trace = trace_for(w);
        let seed = SEED ^ w.name.len() as u64;
        for &scheme in &all_schemes() {
            for channels in [1usize, 2, 8] {
                let sim = Simulator::new(MemoryConfig::small_test().with_channels(channels));
                let device = |ch: usize| scheme.build_for_channel(seed, ch, 0, 0);
                let reference =
                    sim.run_sharded_reference(|_| TraceCursor::new(&trace), device);
                assert!(reference.reads > 0, "{}/{scheme}: no reads simulated", w.name);
                for &workers in &widths {
                    let sharded = sim.run_sharded(
                        &Pool::new(workers),
                        |_| TraceCursor::new(&trace),
                        device,
                    );
                    assert_eq!(
                        sharded, reference,
                        "{}/{scheme} channels={channels} workers={workers}: \
                         sharded run diverged from the sequential reference",
                        w.name
                    );
                }
            }
        }
    }
}

/// Edge case: a 1-channel topology is the pre-topology engine. The plain
/// (unsharded) `run` path — whose event semantics predate the topology
/// work and are pinned by the golden suites — must equal both sharded
/// paths exactly, for a drift-free and a scrubbing scheme.
#[test]
fn single_channel_reproduces_the_pre_topology_engine() {
    let w = Workload::toy();
    let trace = trace_for(&w);
    let sim = Simulator::new(MemoryConfig::small_test());
    for &scheme in &[SchemeKind::Ideal, SchemeKind::Scrubbing, SchemeKind::Lwt { k: 4 }] {
        let mut device = scheme.build(SEED);
        let plain = sim.run(&trace, device.as_mut());
        let sharded = sim.run_sharded(
            &Pool::new(2),
            |_| TraceCursor::new(&trace),
            |ch| scheme.build_for_channel(SEED, ch, 0, 0),
        );
        let reference = sim.run_sharded_reference(
            |_| TraceCursor::new(&trace),
            |ch| scheme.build_for_channel(SEED, ch, 0, 0),
        );
        assert_eq!(plain, sharded, "{scheme}: sharded 1-channel run diverged");
        assert_eq!(plain, reference, "{scheme}: reference 1-channel run diverged");
    }
    // channel_seed is the identity on channel 0 — the property the
    // equalities above rest on.
    assert_eq!(channel_seed(SEED, 0), SEED);
    assert_ne!(channel_seed(SEED, 1), SEED);
}

/// A synthetic in-order stream: each core issues `ops` operations of one
/// kind to a fixed arithmetic line sequence, one op every `stride`
/// instructions.
struct SyntheticSource {
    streams: Vec<Vec<MemOp>>,
    pos: Vec<usize>,
}

impl SyntheticSource {
    fn new(streams: Vec<Vec<MemOp>>) -> Self {
        let pos = vec![0; streams.len()];
        Self { streams, pos }
    }

    fn stream(kind: OpKind, first_line: u64, line_step: u64, ops: u64) -> Vec<MemOp> {
        (0..ops)
            .map(|i| MemOp {
                icount: (i + 1) * 10,
                line: first_line + i * line_step,
                kind,
            })
            .collect()
    }
}

impl OpSource for SyntheticSource {
    fn cores(&self) -> usize {
        self.streams.len()
    }

    fn peek(&mut self, core: usize) -> Option<MemOp> {
        self.streams[core].get(self.pos[core]).copied()
    }

    fn advance(&mut self, core: usize) {
        self.pos[core] += 1;
    }
}

/// The same differential gate with the endurance model switched on: hard
/// faults, write-verify retries and spare-line remapping are all channel-
/// local state, so a worn sharded run must still be bit-for-bit the
/// sequential single-wheel reference at every pool width. The aging is
/// accelerated enough that cells actually die and lines actually remap —
/// an unreached wear table would make this leg vacuous.
#[test]
fn sharded_engine_matches_sequential_reference_under_wear() {
    use readduo::core::WearConfig;
    let widths = pool_widths();
    let injectable = [
        SchemeKind::Scrubbing,
        SchemeKind::Hybrid,
        SchemeKind::Lwt { k: 4 },
        SchemeKind::Select { k: 4, s: 2 },
    ];
    let w = Workload::by_name("mcf").expect("mcf in the SPEC2006 set");
    let trace = trace_for(&w);
    let seed = SEED ^ w.name.len() as u64;
    let fault_seed = 0x00FA_0017u64;
    let wear = WearConfig::new(fault_seed).with_accel(4_000_000);
    let mut total_remaps = 0u64;
    for &scheme in &injectable {
        for channels in [1usize, 2, 8] {
            let sim = Simulator::new(MemoryConfig::small_test().with_channels(channels));
            let device = |ch: usize| {
                let ch_wear = WearConfig {
                    seed: channel_seed(wear.seed, ch),
                    ..wear
                };
                scheme
                    .build_worn(
                        channel_seed(seed, ch),
                        channel_seed(fault_seed, ch),
                        ch_wear,
                        0,
                        0,
                    )
                    .expect("injectable scheme")
            };
            let reference = sim.run_sharded_reference(|_| TraceCursor::new(&trace), device);
            total_remaps += reference.lines_remapped;
            for &workers in &widths {
                let sharded =
                    sim.run_sharded(&Pool::new(workers), |_| TraceCursor::new(&trace), device);
                assert_eq!(
                    sharded, reference,
                    "{scheme} channels={channels} workers={workers}: \
                     worn sharded run diverged from the sequential reference"
                );
            }
        }
    }
    assert!(
        total_remaps > 0,
        "the worn equivalence leg must actually exercise remapping"
    );
}

/// The same differential gate with the hybrid DRAM–PCM tier in front of
/// every channel's device: the cache tag store, miss counters, row-buffer
/// state and migration decisions are all channel-local, so a tiered
/// sharded run must still be bit-for-bit the sequential single-wheel
/// reference at every pool width. The tier is sized to actually hit —
/// a cold cache would make this leg vacuous.
#[test]
fn sharded_engine_matches_sequential_reference_with_dram_tier() {
    use readduo::dram::DramConfig;
    let widths = pool_widths();
    let schemes = [
        SchemeKind::Scrubbing,
        SchemeKind::Lwt { k: 4 },
        SchemeKind::Select { k: 4, s: 2 },
    ];
    let w = Workload::by_name("gcc").expect("gcc in the SPEC2006 set");
    // A longer trace than the shared `trace_for` one: the non-vacuity
    // check needs enough reuse for hits and enough churn for dirty
    // demotions out of the smallest (1/8th) per-channel slice.
    let trace = TraceGenerator::new(SEED).generate(&w, 120_000, 2);
    let seed = SEED ^ w.name.len() as u64;
    let dram = DramConfig::new(SEED, 32).with_threshold(1);
    let mut total_hits = 0u64;
    let mut total_writebacks = 0u64;
    for &scheme in &schemes {
        for channels in [1usize, 2, 8] {
            let sim = Simulator::new(MemoryConfig::small_test().with_channels(channels));
            let device =
                |ch: usize| scheme.build_tiered_for_channel(seed, ch, channels, dram, 0, 0);
            let reference = sim.run_sharded_reference(|_| TraceCursor::new(&trace), device);
            total_hits += reference.dram_hits;
            total_writebacks += reference.dram_writebacks;
            for &workers in &widths {
                let sharded =
                    sim.run_sharded(&Pool::new(workers), |_| TraceCursor::new(&trace), device);
                assert_eq!(
                    sharded, reference,
                    "{scheme} channels={channels} workers={workers}: \
                     tiered sharded run diverged from the sequential reference"
                );
            }
        }
    }
    assert!(
        total_hits > 0 && total_writebacks > 0,
        "the tiered equivalence leg must exercise hits and dirty demotions \
         (hits {total_hits}, writebacks {total_writebacks})"
    );
}

/// Edge case: congestion does not cross channels. Core 0 hammers writes
/// into channel 0 against a device with a pathological write latency —
/// its per-bank write queues fill and stall core 0 — while core 1 reads
/// from channel 1. Because channels share no state, core 1's read-latency
/// distribution must be bit-for-bit the distribution it sees when channel
/// 0 is completely idle, and only the congested run's execution time
/// blows up.
#[test]
fn full_write_queue_stalls_only_cores_issuing_to_that_channel() {
    let cfg = MemoryConfig::small_test().with_channels(2);
    let sim = Simulator::new(cfg);
    // Channel 0 owns even lines, channel 1 odd lines (line % channels).
    let hammer = SyntheticSource::stream(OpKind::Write, 0, 2, 400);
    let reader = SyntheticSource::stream(OpKind::Read, 1, 2, 400);
    // Writes take 1 ms: the 4-entry queue fills almost immediately.
    let device = |_ch: usize| FixedLatencyDevice::with_latencies(150, 1_000_000);

    let congested = sim.run_sharded(
        &Pool::new(2),
        |_| SyntheticSource::new(vec![hammer.clone(), reader.clone()]),
        device,
    );
    let idle = sim.run_sharded(
        &Pool::new(2),
        |_| SyntheticSource::new(vec![Vec::new(), reader.clone()]),
        device,
    );

    // Channel 1 owns every read in both runs, and its sub-simulation is
    // identical: same reads, same latency distribution, bit for bit.
    assert_eq!(congested.reads, idle.reads);
    assert_eq!(congested.reads, 400);
    assert_eq!(
        congested.read_latency, idle.read_latency,
        "channel-0 congestion leaked into channel-1 read latencies"
    );
    // The stalls are real, and confined to channel 0: the congested run's
    // execution time (max over channels) is dominated by the serialised
    // 1 ms writes, far beyond anything channel 1 does.
    assert_eq!(congested.writes, 400);
    assert!(
        congested.exec_ns > idle.exec_ns.saturating_mul(10),
        "expected channel 0 to stall on its full write queue \
         (congested {} ns vs idle {} ns)",
        congested.exec_ns,
        idle.exec_ns
    );
}

/// Edge case: per-channel scrub wrap-around. A tiny bank array scrubbed on
/// a fast cadence wraps every per-channel scrub pointer several times; the
/// sharded run must agree with the reference, every scrub must land on a
/// line the channel owns (enforced by the engine's routing debug_asserts),
/// and the scrub count must exceed one full sweep of the array.
#[test]
fn per_channel_scrub_wraps_and_stays_sharded() {
    let mut cfg = MemoryConfig::small_test().with_channels(2);
    cfg.lines_per_bank = 8; // 2 channels × 2 banks × 8 lines = 32 lines
    let sim = Simulator::new(cfg);
    let trace = TraceGenerator::new(SEED).generate(&Workload::toy(), 6_000, 2);
    // Eight scrub ticks per microsecond of simulated time (interval 1e-6 s
    // over 8 lines = one tick per 125 ns) wrap each bank's 8-line pointer
    // many times over the run. The device latencies are chosen so a
    // scrub+rewrite costs 80 ns of bank time — *below* the 125 ns tick
    // period. Scrub demand above 100% of a bank's capacity would be a
    // livelock, not a stress test: `bank_kick` only starts a queued write
    // once `busy_until` catches up to `now`, so a permanently-saturated
    // bank never drains its write queue, the writing core never retires,
    // and the run never terminates.
    let device = |_ch: usize| {
        FixedLatencyDevice::with_latencies(20, 60).with_scrub(1e-6, true)
    };
    let reference = sim.run_sharded_reference(|_| TraceCursor::new(&trace), device);
    let sharded = sim.run_sharded(&Pool::new(2), |_| TraceCursor::new(&trace), device);
    assert_eq!(sharded, reference);
    let total_lines = sim.config().total_lines();
    assert!(
        reference.scrubs + reference.scrubs_skipped > total_lines,
        "scrub pointers did not wrap: {} ticks over {} lines",
        reference.scrubs + reference.scrubs_skipped,
        total_lines
    );
}

/// Channel routing is stream-order invariant: replaying the same ops from
/// a materialised trace and from a chunked stream yields identical merged
/// reports on a multi-channel topology (each channel filters the same
/// logical stream, however it is buffered).
#[test]
fn multi_channel_routing_is_stream_order_invariant() {
    let h = readduo_bench::Harness {
        instructions_per_core: 8_000,
        cores: 2,
        seed: SEED,
        memory: MemoryConfig::small_test().with_channels(4),
    };
    for w in &workloads() {
        let trace = h.trace_for(w);
        for &scheme in &[SchemeKind::Hybrid, SchemeKind::Select { k: 4, s: 2 }] {
            let on_trace = h.run_on_trace(w, &trace, scheme);
            let streamed = h.run_streamed(w, scheme);
            assert_eq!(
                on_trace.report, streamed.report,
                "{}/{scheme}: sharded stream diverged from sharded trace",
                w.name
            );
        }
    }
}

/// Reports fold in channel order: merging a single report is the identity,
/// and the merged report of a multi-channel run carries the sums/maxima
/// its parts imply (spot-checked against the reference runner's output).
#[test]
fn merged_report_is_consistent_with_its_parts() {
    let w = Workload::toy();
    let trace = trace_for(&w);
    let topo = Topology { channels: 2, ranks: 1, banks_per_rank: 2 };
    let mut cfg = MemoryConfig::small_test();
    cfg.topology = topo;
    let sim = Simulator::new(cfg);
    let merged = sim.run_sharded_reference(
        |_| TraceCursor::new(&trace),
        |_| FixedLatencyDevice::ideal(),
    );
    // Identity on one report.
    assert_eq!(SimReport::merged(std::slice::from_ref(&merged)), merged);
    // The two channels partition the demand traffic of the plain trace.
    let mut cursor = TraceCursor::new(&trace);
    let mut reads = 0u64;
    let mut writes = 0u64;
    for core in 0..cursor.cores() {
        while let Some(op) = cursor.peek(core) {
            match op.kind {
                OpKind::Read => reads += 1,
                OpKind::Write => writes += 1,
            }
            cursor.advance(core);
        }
    }
    assert_eq!(merged.reads, reads, "merged reads must cover the whole trace");
    assert_eq!(merged.writes, writes, "merged writes must cover the whole trace");
}
