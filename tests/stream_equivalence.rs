//! Tier-1 guarantee of the streaming replay path: simulating from a
//! [`TraceStream`] is bit-for-bit identical to materialising the whole
//! trace first, for every scheme, and the stream's chunk size can never
//! leak into the records it produces.
//!
//! [`TraceStream`]: readduo::trace::TraceStream

use readduo::core::SchemeKind;
use readduo::memsim::MemoryConfig;
use readduo::trace::{TraceGenerator, Workload};
use readduo_bench::Harness;

fn harness() -> Harness {
    // `READDUO_CHANNELS` widens the topology (default 1): the streamed and
    // materialised paths must agree bit-for-bit on sharded runs too.
    let channels = readduo_env::usize_at_least("READDUO_CHANNELS", 1).unwrap_or(1);
    Harness {
        instructions_per_core: 30_000,
        cores: 2,
        seed: 0x00D5_EAD0_2016,
        memory: MemoryConfig::small_test().with_channels(channels),
    }
}

fn all_schemes() -> Vec<SchemeKind> {
    vec![
        SchemeKind::Ideal,
        SchemeKind::Scrubbing,
        SchemeKind::ScrubbingW0,
        SchemeKind::MMetric,
        SchemeKind::Hybrid,
        SchemeKind::Lwt { k: 4 },
        SchemeKind::LwtNoConversion { k: 2 },
        SchemeKind::Select { k: 4, s: 2 },
        SchemeKind::Tlc,
    ]
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload::toy(),
        Workload::by_name("gcc").expect("gcc in the SPEC2006 set"),
        Workload::by_name("mcf").expect("mcf in the SPEC2006 set"),
    ]
}

/// Every scheme, on several workloads: the streamed run must reproduce the
/// materialised run's report exactly.
#[test]
fn streamed_run_equals_materialised_run_for_every_scheme() {
    let h = harness();
    for w in &workloads() {
        let trace = h.trace_for(w);
        for &scheme in &all_schemes() {
            let on_trace = h.run_on_trace(w, &trace, scheme);
            let streamed = h.run_streamed(w, scheme);
            assert_eq!(
                on_trace.report, streamed.report,
                "stream diverged from trace for {} / {}",
                w.name, scheme
            );
        }
    }
}

/// `generate()` and `stream().collect_trace()` are the same trace — the
/// materialised path is literally a drained stream.
#[test]
fn collect_trace_equals_generate() {
    let h = harness();
    for w in &workloads() {
        let gen = TraceGenerator::new(h.seed);
        let materialised = gen.generate(w, h.instructions_per_core, h.cores);
        let collected = gen
            .stream(w, h.instructions_per_core, h.cores)
            .collect_trace();
        assert_eq!(materialised, collected, "{}", w.name);
    }
}

/// The chunk size is pure buffering: pathological (1), odd (7) and large
/// (4096) chunks all yield record-identical traces.
#[test]
fn chunk_size_never_changes_records() {
    let h = harness();
    let w = Workload::by_name("gcc").expect("gcc");
    let gen = TraceGenerator::new(h.seed);
    let reference = gen.generate(&w, h.instructions_per_core, h.cores);
    for chunk in [1usize, 7, 4096] {
        let collected = gen
            .stream(&w, h.instructions_per_core, h.cores)
            .with_chunk(chunk)
            .collect_trace();
        assert_eq!(reference, collected, "chunk size {chunk}");
    }
}
