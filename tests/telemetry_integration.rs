//! End-to-end telemetry: a harness run with `READDUO_TELEMETRY` on must
//! (a) produce bit-for-bit the same `SimReport`s as a disabled run,
//! (b) emit a structurally valid Chrome trace with per-bank spans and
//! queue-depth counter tracks, and (c) fill the metrics registry with a
//! non-zero read-latency p99 — the three claims ISSUE 5 gates on.
//!
//! The enabled/disabled toggle is flipped programmatically
//! (`set_enabled`) so the test is independent of the environment it runs
//! in. Everything happens in one `#[test]` because the toggle and the
//! trace collector are process-global.

use readduo_bench::Harness;
use readduo_core::SchemeKind;
use readduo_memsim::MemoryConfig;
use readduo_telemetry::check::validate_chrome_trace;
use readduo_telemetry::metrics::{self, Metric};
use readduo_telemetry::{export, set_enabled};
use readduo_trace::Workload;

fn tiny_harness() -> Harness {
    Harness {
        instructions_per_core: 40_000,
        cores: 2,
        seed: 0x7E1E_2016,
        memory: MemoryConfig::small_test(),
    }
}

#[test]
fn enabled_telemetry_changes_nothing_and_exports_a_valid_trace() {
    let harness = tiny_harness();
    let workload = Workload::toy();
    let schemes = [SchemeKind::Ideal, SchemeKind::Hybrid];
    let trace = harness.trace_for(&workload);

    // Baseline: telemetry off (the default in tests, but force it).
    set_enabled(false);
    let baseline: Vec<_> = schemes
        .iter()
        .map(|&s| harness.run_on_trace(&workload, &trace, s))
        .collect();

    // Same matrix with telemetry on.
    set_enabled(true);
    metrics::reset();
    let _ = export::render_trace(); // drain anything a prior test left behind
    let traced: Vec<_> = schemes
        .iter()
        .map(|&s| harness.run_on_trace(&workload, &trace, s))
        .collect();
    let rendered = export::render_trace();
    let snap = metrics::snapshot();
    set_enabled(false);
    metrics::reset();

    // (a) Bit-for-bit: the instrumented run reports exactly what the
    // plain run reports.
    for (b, t) in baseline.iter().zip(&traced) {
        assert_eq!(b.scheme, t.scheme);
        assert_eq!(
            b.report, t.report,
            "telemetry changed the {} report",
            b.scheme
        );
    }

    // (b) The exported trace passes the in-tree checker and carries the
    // tracks the engine promises: per-bank spans, queue-depth counters,
    // named processes per (workload, scheme) run.
    let stats = validate_chrome_trace(&rendered).expect("exported trace must validate");
    assert!(stats.spans > 0, "no spans in {stats:?}");
    assert!(stats.counters > 0, "no queue-depth counters in {stats:?}");
    assert!(stats.names.contains("read"), "no read spans in {stats:?}");
    assert!(
        stats.names.iter().any(|n| n.starts_with("queue.b")),
        "no per-bank queue counter tracks in {stats:?}"
    );
    assert!(
        stats.thread_names.iter().any(|t| t == "bank 0"),
        "bank tracks unnamed in {stats:?}"
    );
    assert!(
        stats
            .process_names
            .iter()
            .any(|p| p.contains("toy/") && p.contains("Hybrid")),
        "run labels missing from process names: {:?}",
        stats.process_names
    );

    // (c) The metrics snapshot has the run counters and a populated
    // read-latency histogram.
    match snap.get("sim.reads") {
        Some(Metric::Counter(n)) => assert!(*n > 0, "sim.reads counted {n}"),
        other => panic!("sim.reads missing or mistyped: {other:?}"),
    }
    match snap.get("sim.read_latency_ns") {
        Some(Metric::Histogram(h)) => {
            assert!(h.count() > 0, "read-latency histogram empty");
            assert!(h.p99() > 0, "read-latency p99 is zero");
        }
        other => panic!("sim.read_latency_ns missing or mistyped: {other:?}"),
    }

    // And the percentile accessors the fig9 p99 column uses agree with
    // the per-run histogram.
    let hybrid = &traced[1].report.read_latency;
    assert!(hybrid.p99_ns() >= hybrid.p50_ns());
    assert!(hybrid.p50_ns() > 0);
}
