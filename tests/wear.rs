//! Tier-1 guarantees of the endurance subsystem.
//!
//! Three properties anchor the wear work:
//!
//! 1. **Opt-in identity** — a wear table at real-time aging (`accel = 1`,
//!    10⁷-cycle median) never reaches a single failure inside a simulated
//!    window, and a run carrying it is bit-for-bit the plain
//!    fault-injected run: the subsystem consumes no randomness and
//!    perturbs no outcome until a cell actually dies.
//! 2. **Determinism** — under heavy accelerated wear the whole pipeline
//!    (hash-derived endurance, write-verify retries, stuck-at reads
//!    through the erasure-aware decode, spare-line remapping, spare
//!    exhaustion) replays bit-for-bit from the seed, including the remap
//!    log itself.
//! 3. **No silent corruption** — at the default retry/spare budget the
//!    erasure-hinted decode never passes wrong data off as good, no
//!    matter how hard the aging is accelerated.

use readduo::core::{HybridScheme, SchemeKind, WearConfig};
use readduo::memsim::{MemoryConfig, Simulator};
use readduo::trace::{TraceGenerator, Workload};
use readduo_bench::Harness;

const SEED: u64 = 0x00D5_EAD0_2016;
const FAULT_SEED: u64 = 0x00FA_0017;

fn harness(channels: usize) -> Harness {
    Harness {
        instructions_per_core: 40_000,
        cores: 2,
        seed: SEED,
        memory: MemoryConfig::small_test().with_channels(channels),
    }
}

fn injectable() -> [SchemeKind; 4] {
    [
        SchemeKind::Scrubbing,
        SchemeKind::Hybrid,
        SchemeKind::Lwt { k: 4 },
        SchemeKind::Select { k: 4, s: 2 },
    ]
}

#[test]
fn unreached_wear_is_bit_identical_to_the_plain_faulty_run() {
    let w = Workload::by_name("gcc").expect("gcc");
    for channels in [1usize, 2] {
        let h = harness(channels);
        for scheme in injectable() {
            let plain = h.run_one_faulty(&w, scheme, FAULT_SEED).expect("injectable");
            let worn = h
                .run_one_worn(&w, scheme, FAULT_SEED, WearConfig::new(FAULT_SEED))
                .expect("injectable");
            assert_eq!(
                plain.report, worn.report,
                "{scheme} channels={channels}: an unreached wear table must be invisible"
            );
            assert_eq!(worn.report.verify_retries, 0);
            assert_eq!(worn.report.lines_remapped, 0);
        }
    }
}

#[test]
fn worn_runs_replay_bit_for_bit_from_the_seed() {
    let w = Workload::by_name("mcf").expect("mcf");
    let wear = WearConfig::new(FAULT_SEED).with_accel(500_000);
    for channels in [1usize, 2] {
        let h = harness(channels);
        for scheme in injectable() {
            let a = h.run_one_worn(&w, scheme, FAULT_SEED, wear).expect("injectable");
            let b = h.run_one_worn(&w, scheme, FAULT_SEED, wear).expect("injectable");
            assert_eq!(
                a.report, b.report,
                "{scheme} channels={channels}: worn run is not deterministic"
            );
        }
    }
}

#[test]
fn heavy_wear_exercises_the_pipeline_without_silent_corruption() {
    // Default budget (3 retries, 64 spares, margin 2) under aging hard
    // enough to kill cells and consume spares: retries, stuck-bit reads
    // and remaps must all appear — silent corruptions must not.
    let w = Workload::by_name("mcf").expect("mcf");
    let h = harness(1);
    let wear = WearConfig::new(FAULT_SEED).with_accel(4_000_000);
    let mut retries = 0u64;
    let mut remaps = 0u64;
    let mut stuck_reads = 0u64;
    for scheme in injectable() {
        let r = h.run_one_worn(&w, scheme, FAULT_SEED, wear).expect("injectable");
        assert_eq!(
            r.report.silent_corruptions, 0,
            "{scheme}: erasure-hinted decode must not corrupt silently"
        );
        retries += r.report.verify_retries;
        remaps += r.report.lines_remapped;
        stuck_reads += r.report.stuck_bit_reads;
    }
    assert!(retries > 0, "accel 4e6 must trigger write-verify retries");
    assert!(remaps > 0, "accel 4e6 must trigger spare-line remaps");
    assert!(stuck_reads > 0, "dead cells must surface in reads");
}

#[test]
fn spare_exhaustion_is_deterministic() {
    // A 2-spare pool under heavy aging: the pool must run dry, the
    // overflow writes must be flagged, and the whole degradation path —
    // including the post-exhaustion regime where lines live on erasure
    // hints alone — must replay exactly.
    let w = Workload::by_name("mcf").expect("mcf");
    let h = harness(1);
    let wear = WearConfig {
        spare_lines: 2,
        ..WearConfig::new(FAULT_SEED).with_accel(4_000_000)
    };
    let a = h
        .run_one_worn(&w, SchemeKind::Hybrid, FAULT_SEED, wear)
        .expect("injectable");
    assert!(
        a.report.spares_exhausted_writes > 0,
        "2 spares under accel 4e6 must exhaust"
    );
    assert_eq!(a.report.lines_remapped, 2, "exactly the pool size remaps");
    let b = h
        .run_one_worn(&w, SchemeKind::Hybrid, FAULT_SEED, wear)
        .expect("injectable");
    assert_eq!(a.report, b.report, "exhaustion must replay bit-for-bit");
}

#[test]
fn remap_log_replays_from_the_seed() {
    // Below the harness: drive a concrete scheme through the simulator
    // and compare the remap logs themselves, not just the report sums.
    let w = Workload::by_name("mcf").expect("mcf");
    let trace = TraceGenerator::new(SEED).generate(&w, 40_000, 2);
    let sim = Simulator::new(MemoryConfig::small_test());
    let run = || {
        let mut s = HybridScheme::paper(SEED)
            .with_fault_injection(FAULT_SEED)
            .with_wear(WearConfig::new(FAULT_SEED).with_accel(4_000_000));
        let report = sim.run(&trace, &mut s);
        (report, s.wear().expect("wear attached").remap_log().to_vec())
    };
    let (rep_a, log_a) = run();
    let (rep_b, log_b) = run();
    assert!(!log_a.is_empty(), "accel 4e6 must remap at least one line");
    assert_eq!(log_a, log_b, "remap order must replay from the seed");
    assert_eq!(rep_a, rep_b);
    assert_eq!(rep_a.lines_remapped, log_a.len() as u64);
}
