//! Steady-state allocation audit for the engine hot path.
//!
//! PR 8's arena work (pre-reserved timing-wheel tiers, bounded bank
//! queues, warm line tables) promises that the steady-state engine loop
//! allocates *nothing*: after warm-up, every simulated op runs entirely
//! inside capacity that already exists. This suite pins that with a
//! counting global allocator:
//!
//! * **plain** — the same device is run twice over the same trace; the
//!   second run's line table and curve caches are warm, so its
//!   allocation count must be a small per-run setup constant (engine
//!   scaffolding: bank vectors, wheel buckets, the cursor), independent
//!   of the 100k+ ops simulated.
//! * **sharded** — `run_sharded` rebuilds devices per run, so the
//!   warm-device trick does not apply; instead the op count is doubled
//!   and the allocation count must stay flat (setup + per-run warm-up
//!   only, nothing per-op).
//!
//! The counting allocator lives only in this integration-test binary —
//! library crates stay `forbid(unsafe_code)`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use readduo_core::HybridScheme;
use readduo_memsim::{MemoryConfig, Simulator};
use readduo_pool::Pool;
use readduo_trace::{Trace, TraceCursor, TraceGenerator, Workload};

/// Counts allocation *events* (alloc + realloc); deallocation is free.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn toy_trace(seed: u64, instructions: u64) -> Trace {
    // toy = 30 mem ops / kinstr over 2 cores.
    TraceGenerator::new(seed).generate(&Workload::toy(), instructions, 2)
}

fn hybrid(seed: u64) -> HybridScheme {
    HybridScheme::paper(seed).with_dense_region(Workload::toy().footprint_lines)
}

// One test function, sequential legs: the counter is process-global and
// the libtest harness runs separate `#[test]`s on concurrent threads.
#[test]
fn steady_state_engine_loop_does_not_allocate() {
    // ---- plain: warm device, second run is setup-only ----------------
    let trace = toy_trace(11, 1_700_000);
    let sim = Simulator::new(MemoryConfig::small_test());
    let mut dev = hybrid(11);
    let warm = sim.run(&trace, &mut dev);
    let ops = warm.reads + warm.writes;
    assert!(ops >= 100_000, "need a 100k-op steady-state window, got {ops}");

    let before = allocs();
    let rep = sim.run(&trace, &mut dev);
    let plain_delta = allocs() - before;
    eprintln!("zero_alloc: plain warm run = {plain_delta} allocations over {ops} ops");
    assert_eq!(rep.reads + rep.writes, ops, "replays must issue identically");
    // Per-run scaffolding (bank vector + deques, 256 wheel buckets + two
    // heaps, trace cursor, report) is a few hundred allocations; per-op
    // leakage would show up as ops-many. The bound leaves headroom for
    // scaffolding while sitting three orders of magnitude below one
    // allocation per op.
    assert!(
        plain_delta < 2_000,
        "warm plain run allocated {plain_delta} times over {ops} ops"
    );

    // ---- sharded: doubling the ops must not move the count -----------
    let small = toy_trace(12, 850_000);
    let big = toy_trace(12, 1_700_000);
    let cfg = MemoryConfig::small_test().with_channels(2);
    let sharded = Simulator::new(cfg);
    let pool = Pool::new(2);
    let sharded_run = |t: &Trace| {
        let before = allocs();
        let rep = sharded.run_sharded(
            &pool,
            |_| TraceCursor::new(t),
            |ch| hybrid(12 ^ ch as u64),
        );
        (allocs() - before, rep.reads + rep.writes)
    };
    let (delta_small, ops_small) = sharded_run(&small);
    let (delta_big, ops_big) = sharded_run(&big);
    eprintln!(
        "zero_alloc: sharded {delta_small} allocations @ {ops_small} ops, \
         {delta_big} @ {ops_big}"
    );
    assert!(ops_big >= 100_000, "sharded window too small: {ops_big}");
    assert!(ops_big >= 2 * ops_small - ops_small / 10, "trace sizing drifted");
    // Fresh devices mean each sharded run pays its own warm-up (line
    // table fills, curve caches), so the count is not near-zero — but it
    // must be a function of the footprint, not of the op count.
    assert!(
        delta_big < delta_small + delta_small / 2,
        "sharded allocations scale with ops: {delta_small} @ {ops_small} ops \
         vs {delta_big} @ {ops_big} ops"
    );
}
